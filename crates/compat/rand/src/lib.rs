//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this workspace has no network access, so the external `rand`
//! crate cannot be fetched.  This crate re-implements exactly the API surface the workspace
//! uses — `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` and `Rng::gen_bool` — on top
//! of the SplitMix64 generator.  The streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, which is fine here: every consumer generates *synthetic* workloads whose tests
//! assert statistical shape and determinism, never exact values.
//!
//! The generator is deterministic per seed, so workloads remain reproducible across runs and
//! platforms.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's native output.
pub trait Standard: Sized {
    /// Draws one value from the "standard" distribution (`[0, 1)` for floats).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up onto the excluded endpoint.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Use 53 bits over the closed interval.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 * span, negligible
                // for the workload sizes used here.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Widen to u128 so `hi == MAX` cannot overflow the span.
                let span = u128::from((hi - lo) as u64) + 1;
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as u64;
                lo + offset as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

/// The raw generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers (subset of `rand::Rng`), blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Small, fast, passes BigCrush for the statistical properties the synthetic workload
    /// generators rely on, and — unlike upstream's ChaCha `StdRng` — trivially auditable.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate small seeds.
            Self { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&y));
            let z = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn int_ranges_hit_every_bucket() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..5_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for c in counts {
            assert!(c > 500, "bucket starved: {counts:?}");
        }
    }

    #[test]
    fn inclusive_ranges_handle_type_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x = rng.gen_range(u64::MAX - 3..=u64::MAX);
            assert!(x >= u64::MAX - 3);
            let _ = rng.gen_range(0u64..=u64::MAX);
            let y = rng.gen_range(usize::MAX - 1..=usize::MAX);
            assert!(y >= usize::MAX - 1);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn mean_of_unit_floats_is_centred() {
        let mut rng = StdRng::seed_from_u64(99);
        let mean: f64 = (0..50_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
