//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no network access, so the real crate cannot be fetched.  This
//! shim implements the subset its test-suites use — the [`proptest!`] macro with an optional
//! `#![proptest_config(..)]` attribute, range and tuple strategies, `prop_map`,
//! `proptest::collection::vec`, `prop_assert!` / `prop_assert_eq!` and [`test_runner`] types —
//! with deterministic sampling instead of shrinking.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * cases are generated from a SplitMix64 stream seeded by the test name, so runs are fully
//!   deterministic (upstream seeds from the OS and persists regressions);
//! * there is no shrinking — a failing case panics with the case index so it can be replayed
//!   by re-running the test (the generation is deterministic);
//! * strategies are plain samplers (no `ValueTree`).

#![forbid(unsafe_code)]

/// Strategy combinators: types that know how to produce random values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let v = rng.unit_f64().mul_add(self.end - self.start, self.start);
            // Keep the excluded endpoint excluded even under rounding.
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.closed_unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "cannot sample empty range");
                    self.start + (((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    (*self.start()..*self.end() + 1).sample(rng)
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, i32);

    /// A fixed value used as a strategy (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// How many elements a generated collection may have.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` (a count or a half-open range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = (self.size.lo..self.size.hi).sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration and error types (subset of `proptest::test_runner`).
pub mod test_runner {
    use std::fmt;

    /// Configuration of a property test run.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test.
        pub cases: u32,
        /// Accepted but unused (no shrinking in the shim).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256, max_shrink_iters: 0 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }

    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The inputs were rejected (e.g. by `prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed property with the given message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected input with the given message.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic SplitMix64 stream used for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test name (FNV-1a over the bytes).
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw from `[0, 1]`.
        pub fn closed_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
        }
    }
}

/// The usual single-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a property inside a proptest body, failing the case (not aborting the process)
/// when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Rejects the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }` becomes a `#[test]`
/// that samples the strategies `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut rejected: u32 = 0;
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.cases * 4,
                                "too many rejected inputs in {}",
                                stringify!($name)
                            );
                        }
                        ::core::result::Result::Err(e) => {
                            panic!("{} failed at case {case}: {e}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                #[test]
                fn $name ( $( $arg in $strat ),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..10.0, n in 1usize..5) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn prop_map_applies(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn fixed_size_vectors(v in crate::collection::vec(0.0f64..1.0, 3)) {
            prop_assert_eq!(v.len(), 3);
        }
    }

    fn helper(ok: bool) -> Result<(), TestCaseError> {
        prop_assert!(ok, "helper saw false");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn question_mark_propagates(x in 0.0f64..1.0) {
            helper(x < 1.0)?;
        }
    }
}
