//! Fleet monitoring: one server, many concurrent moving groups.
//!
//! The paper's evaluation replays one group at a time, but the production scenario is a
//! server monitoring a whole fleet of groups against one POI index.  This example registers
//! 24 groups (mixed objectives and safe-region methods, like a real mixed tenant base) with a
//! sharded `MonitoringEngine` whose persistent worker pool advances them in parallel ticks,
//! churns the membership mid-run — a handful of groups leave at tick 150 and rejoin under
//! their old ids at tick 450 — and prints live fleet summaries, the final per-group and
//! fleet-wide metrics, and the per-shard load counters.
//!
//! Run with: `cargo run --release --example fleet_monitoring`

use std::sync::Arc;

use mpn::core::{Method, Objective};
use mpn::index::RTree;
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{taxi_trajectory, TaxiConfig};
use mpn::mobility::Trajectory;
use mpn::sim::{MonitorConfig, MonitoringEngine, TrajectoryFeed};

/// Groups that leave the fleet mid-run and rejoin later.
const CHURNERS: std::ops::Range<usize> = 0..4;

fn main() {
    // The shared POI index all groups are served from.
    let pois = clustered_pois(
        &PoiConfig { count: 4_000, domain: 8_000.0, clusters: 10, ..PoiConfig::default() },
        7,
    );
    let tree = RTree::bulk_load(&pois);

    // 24 groups of 3-5 users each, with a mix of objectives and methods.
    let taxi =
        TaxiConfig { domain: 8_000.0, speed_limit: 10.0, timestamps: 600, ..TaxiConfig::default() };
    let theta = std::f64::consts::FRAC_PI_4;
    let method_mix = [
        Method::circle(),
        Method::tile(),
        Method::tile_directed(theta),
        Method::tile_directed_buffered(theta, 100),
    ];

    // Generate the whole fleet first.  Each group's recording sits behind an `Arc`, so the
    // initial registration and the later rejoin replay the same data without copying it.
    let fleet: Vec<Arc<Vec<Trajectory>>> = (0..24u64)
        .map(|g| {
            let size = 3 + (g % 3) as usize;
            Arc::new((0..size).map(|i| taxi_trajectory(&taxi, g * 100 + i as u64)).collect())
        })
        .collect();

    let config_for = |g: usize| {
        let objective = if g.is_multiple_of(2) { Objective::Max } else { Objective::Sum };
        let method = method_mix[g % 4];
        MonitorConfig::new(objective, method)
            // The buffered methods keep their §5.4 GNN buffer alive across updates.
            .with_persistent_buffers(matches!(method, Method::Tile(c) if c.buffering.is_some()))
    };

    let mut engine = MonitoringEngine::new(tree, 8);
    for (g, group) in fleet.iter().enumerate() {
        engine.register(TrajectoryFeed::new(Arc::clone(group)), config_for(g));
    }

    println!(
        "== Fleet monitoring: {} groups, {} shards ==\n",
        engine.group_count(),
        engine.shard_count()
    );

    // Drive the fleet tick by tick, reporting every 100 ticks.  Membership is dynamic: at
    // tick 150 the churners leave (their session state is reclaimed, their metrics retained),
    // at tick 450 they rejoin under their old ids with fresh sessions.
    while !engine.is_finished() {
        let summary = engine.tick();
        if summary.tick.is_multiple_of(100) {
            println!(
                "tick {:>4}: {:>2} live groups, {:>2} updates, {:>2} violating users, {} retired",
                summary.tick, summary.advanced, summary.updated, summary.violators, summary.retired
            );
        }
        if summary.tick == 150 {
            for id in CHURNERS {
                let departed = engine.deregister(id).expect("churner is registered");
                println!(
                    "tick  150: group {id} left after {} updates / {} packets",
                    departed.updates,
                    departed.packets()
                );
            }
        }
        if summary.tick == 450 {
            for id in CHURNERS {
                engine.rejoin(id, TrajectoryFeed::new(Arc::clone(&fleet[id])), config_for(id));
            }
            println!(
                "tick  450: groups {CHURNERS:?} rejoined under their old ids ({} registered)",
                engine.group_count()
            );
        }
    }

    println!(
        "\n{:<6} {:<9} {:<10} {:>7} {:>12} {:>12} {:>14}",
        "group", "objective", "method", "users", "updates", "freq", "packets/ts"
    );
    for id in 0..engine.group_count() {
        let session = engine.group(id);
        let metrics = engine.group_metrics(id);
        println!(
            "{:<6} {:<9} {:<10} {:>7} {:>12} {:>12.4} {:>14.3}",
            id,
            session.config().objective.name(),
            session.config().method.name(),
            metrics.group_size,
            metrics.updates,
            metrics.update_frequency(),
            metrics.packets_per_timestamp()
        );
    }

    let fleet = engine.fleet_metrics();
    println!(
        "\nfleet: {} users, {} safe-region computations over {} group-timestamps, {} packets total",
        fleet.group_size,
        fleet.updates,
        fleet.timestamps,
        fleet.packets()
    );
    println!(
        "       mean compute time {:.1} us, p95 {:.1} us",
        fleet.mean_compute_time().as_secs_f64() * 1e6,
        fleet.compute_time_percentile(95.0).as_secs_f64() * 1e6
    );

    println!("\nshard   occupancy   live   idle_ticks   remaining_work");
    for load in engine.shard_loads() {
        println!(
            "{:<7} {:>9} {:>6} {:>12} {:>16}",
            load.shard, load.occupancy, load.live, load.idle_ticks, load.weight
        );
    }
}
