//! Quickstart: compute the optimal meeting point and safe regions for a small group.
//!
//! Run with: `cargo run --example quickstart`

use mpn::core::{Method, MpnServer, Objective};
use mpn::geom::Point;
use mpn::index::RTree;

fn main() {
    // A handful of cafes in a small town.
    let cafes = vec![
        Point::new(200.0, 180.0),
        Point::new(850.0, 300.0),
        Point::new(500.0, 920.0),
        Point::new(400.0, 400.0),
        Point::new(650.0, 650.0),
    ];
    let tree = RTree::bulk_load(&cafes);

    // Three friends at their current locations.
    let friends =
        vec![Point::new(150.0, 250.0), Point::new(420.0, 300.0), Point::new(300.0, 520.0)];

    println!("== Meeting point notification quickstart ==\n");
    for (label, method) in
        [("Circle safe regions", Method::circle()), ("Tile safe regions", Method::tile())]
    {
        let server = MpnServer::new(&tree, Objective::Max, method);
        let answer = server.compute(&friends);
        println!("{label}:");
        println!(
            "  optimal meeting point: cafe #{} at {} (worst-case walk {:.1})",
            answer.optimal_index, answer.optimal_point, answer.optimal_dist
        );
        for (i, region) in answer.regions.iter().enumerate() {
            println!(
                "  friend {i}: safe region payload = {} values, still inside: {}",
                region.uncompressed_value_count(),
                region.contains(friends[i])
            );
        }
        println!();
    }

    // As long as everyone stays inside their region, no communication is needed.
    let server = MpnServer::new(&tree, Objective::Max, Method::tile());
    let answer = server.compute(&friends);
    let mut moved = friends.clone();
    moved[0] = Point::new(180.0, 270.0); // a small move
    println!("after a small move, recomputation needed: {}", !answer.all_inside(&moved));
    moved[0] = Point::new(900.0, 900.0); // a big move
    println!(
        "after a big move, recomputation needed:  {} (violators: {:?})",
        !answer.all_inside(&moved),
        answer.violators(&moved)
    );

    // For continuous monitoring the server keeps per-group state (heading predictors, the
    // last answer) in a SessionState and threads it through every recomputation.
    use mpn::core::SessionState;
    let mut session = SessionState::new(friends.len(), 0.3);
    session.observe(&friends);
    let _ = server.compute_session(&friends, &mut session);
    session.observe(&moved);
    let stale = session.last_answer().expect("computed above");
    println!(
        "\nstateful session: last answer still valid after the big move: {}",
        stale.all_inside(&moved)
    );
}
