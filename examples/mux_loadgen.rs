//! Loopback load generator for the multiplexed front-end: one event-loop thread, one shared
//! engine, 1000+ concurrent lock-step connections — measured twice, without and with POI
//! churn.
//!
//! A `MuxServer` runs on its own thread; a few client threads each own a slice of the
//! connections and drive them in lock-step rounds (send one report per connection, then read
//! each connection's response batch).  Every epoch round-trip is timed from the uplink write
//! to the next complete batch read, giving per-notification latency under full fan-in.
//!
//! The run has two phases on fresh servers over the same workload:
//!
//! 1. **baseline** — the static world of the PR 6 loadgen;
//! 2. **churn** — an operator console (the first accepted connection, granted admin out of
//!    band) keeps deleting the fleet's optimal POI and re-inserting it at the same spot.
//!    Every change stamps a new world generation and sweeps the invalidation predicates
//!    across all sessions; the delete breaks every answer serving that POI and the
//!    re-insert undercuts every replacement optimum, so the measured downlink carries
//!    forced recomputations and unsolicited `WorldUpdate` pushes.  The latency delta
//!    between the phases prices the whole mutable-world machinery.
//!
//! Since PR 8 the shared engine runs the work-stealing tick executor with the fleet-wide
//! query cache attached (every connection replays the same trajectory, so each epoch asks
//! the same question a thousand times — the flash-crowd case the cache exists for).  Each
//! phase reports the executor counters (batches, steals, cache hit rate) alongside latency.
//!
//! Results land in `BENCH_8.json` with a latency block per phase.
//!
//! Environment knobs (defaults in parentheses): `MPN_CONNS` (1024) total connections,
//! `MPN_EPOCHS` (20) reports per connection, `MPN_GROUP` (3) users per group, `MPN_SHARDS`
//! (4) engine shards, `MPN_CLIENT_THREADS` (8), `MPN_CHURN_MS` (25) milliseconds between
//! world changes, `MPN_OUT` (`BENCH_8.json`).
//!
//! Run with: `cargo run --release --example mux_loadgen`

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use mpn::core::{Method, MpnServer, Objective};
use mpn::geom::Point;
use mpn::index::{QueryCache, RTree};
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{taxi_trajectory, TaxiConfig};
use mpn::mobility::Trajectory;
use mpn::net::{read_batch, MuxConfig, MuxServer, MuxStats};
use mpn::proto::{
    AdminRequest, NotificationKind, Request, Response, WireConfig, WireMethod, WireObjective,
};
use mpn::sim::{
    percentiles, MonitoringEngine, ServerCore, TickExecCounters, TickExecutor, TrajectoryFeed,
};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct Knobs {
    conns: usize,
    epochs: usize,
    group_size: usize,
    shards: usize,
    threads: usize,
    churn_ms: u64,
}

fn main() {
    let knobs = Knobs {
        conns: env_usize("MPN_CONNS", 1024),
        epochs: env_usize("MPN_EPOCHS", 20),
        group_size: env_usize("MPN_GROUP", 3),
        shards: env_usize("MPN_SHARDS", 4),
        threads: env_usize("MPN_CLIENT_THREADS", 8).max(1),
        churn_ms: env_usize("MPN_CHURN_MS", 25) as u64,
    };
    let out_path = std::env::var("MPN_OUT").unwrap_or_else(|_| "BENCH_8.json".into());

    println!(
        "mux loadgen: {} connections x {} epochs, groups of {}, {} shards, {} client threads",
        knobs.conns, knobs.epochs, knobs.group_size, knobs.shards, knobs.threads
    );

    // Every connection replays the same recorded epochs: the load is in the fan-in, not in
    // trajectory diversity.
    let taxi = TaxiConfig {
        domain: 4_000.0,
        speed_limit: 9.0,
        timestamps: knobs.epochs + 1,
        ..TaxiConfig::default()
    };
    let group: Vec<Trajectory> =
        (0..knobs.group_size).map(|i| taxi_trajectory(&taxi, 7_000 + i as u64)).collect();
    let mut feed = TrajectoryFeed::new(group);
    let mut shared_epochs: Vec<Vec<Point>> = Vec::with_capacity(knobs.epochs + 1);
    while let Some(positions) = feed.next_epoch() {
        shared_epochs.push(positions);
    }
    let shared_epochs = Arc::new(shared_epochs);

    let baseline = run_phase(&knobs, &shared_epochs, false);
    println!("\n=== baseline (static world) ===");
    baseline.print();
    let churn = run_phase(&knobs, &shared_epochs, true);
    println!("\n=== churn ({} world changes applied) ===", churn.world_changes);
    churn.print();

    let json = format!(
        "{{\n  \"bench\": \"mux_loadgen\",\n  \"pr\": 8,\n  \"connections\": {conns},\n  \
         \"epochs_per_client\": {epochs},\n  \"group_size\": {group_size},\n  \
         \"shards\": {shards},\n  \"client_threads\": {threads},\n  \
         \"churn_interval_ms\": {churn_ms},\n  \"baseline\": {baseline},\n  \
         \"churn\": {churn}\n}}\n",
        conns = knobs.conns,
        epochs = knobs.epochs,
        group_size = knobs.group_size,
        shards = knobs.shards,
        threads = knobs.threads,
        churn_ms = knobs.churn_ms,
        baseline = baseline.json(),
        churn = churn.json(),
    );
    let mut file = std::fs::File::create(&out_path).expect("create bench output");
    file.write_all(json.as_bytes()).expect("write bench output");
    println!("\nwrote {out_path}");
}

struct PhaseOutcome {
    elapsed: Duration,
    requests: usize,
    stats: MuxStats,
    p50: f64,
    p99: f64,
    max: f64,
    world_changes: usize,
    pushes: usize,
    exec: TickExecCounters,
}

impl PhaseOutcome {
    fn print(&self) {
        let elapsed_ms = self.elapsed.as_secs_f64() * 1_000.0;
        println!(
            "{} report round-trips in {:.1} ms on one event-loop thread \
             ({:.0} requests/s, {} engine ticks)",
            self.requests,
            elapsed_ms,
            self.requests as f64 / self.elapsed.as_secs_f64(),
            self.stats.ticks
        );
        println!(
            "notification latency: p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
            self.p50, self.p99, self.max
        );
        if self.world_changes > 0 {
            println!(
                "world churn: {} changes applied, {} unsolicited WorldUpdate pushes received",
                self.world_changes, self.pushes
            );
        }
        println!(
            "executor: {} batches, {} steals, cache {} hits / {} misses ({:.1}% hit rate)",
            self.exec.batches,
            self.exec.steals,
            self.exec.cache_hits,
            self.exec.cache_misses,
            self.exec.cache_hit_rate() * 100.0
        );
    }

    fn json(&self) -> String {
        format!(
            "{{\n    \"elapsed_ms\": {:.1},\n    \"requests\": {},\n    \
             \"requests_per_sec\": {:.1},\n    \"engine_ticks\": {},\n    \
             \"world_changes\": {},\n    \"world_update_pushes\": {},\n    \
             \"latency_ms\": {{ \"p50\": {:.3}, \"p99\": {:.3}, \"max\": {:.3} }},\n    \
             \"executor\": {{ \"batches\": {}, \"steals\": {}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"cache_hit_rate\": {:.3} }}\n  }}",
            self.elapsed.as_secs_f64() * 1_000.0,
            self.requests,
            self.requests as f64 / self.elapsed.as_secs_f64(),
            self.stats.ticks,
            self.world_changes,
            self.pushes,
            self.p50,
            self.p99,
            self.max,
            self.exec.batches,
            self.exec.steals,
            self.exec.cache_hits,
            self.exec.cache_misses,
            self.exec.cache_hit_rate(),
        )
    }
}

/// One full measured run on a fresh server; with `churn` an admin console mutates the POI
/// world throughout the measured window.
fn run_phase(knobs: &Knobs, shared_epochs: &Arc<Vec<Vec<Point>>>, churn: bool) -> PhaseOutcome {
    let pois = clustered_pois(
        &PoiConfig { count: 2_000, domain: 4_000.0, clusters: 8, ..PoiConfig::default() },
        29,
    );
    let tree = Arc::new(RTree::bulk_load(&pois));
    // The console's churn target: the POI the whole fleet's answers serve (every
    // connection replays the same trajectory, so one precomputed optimum covers them all).
    let seed =
        MpnServer::new(tree.as_ref(), Objective::Max, Method::circle()).compute(&shared_epochs[0]);
    let (target, spot) = (seed.optimal_index as u64, seed.optimal_point);
    // Work-stealing ticks plus the fleet-wide query cache: a thousand identical groups is
    // the flash-crowd workload, so all but the first lookup per epoch and generation hit.
    // Sessions here are cheap (circle method, mostly cache hits), so batches are sized
    // well above the skewed-fleet default — fine-grained stealing would pay more in deque
    // traffic than it recovers from these micro-tasks.
    let executor = TickExecutor::WorkStealing { batch: env_usize("MPN_TICK_BATCH", 64) };
    let engine = MonitoringEngine::with_executor(Arc::clone(&tree), knobs.shards, executor)
        .with_query_cache(QueryCache::new());
    let core = ServerCore::with_engine(engine);
    // Pin per-connection kernel send buffers: at 1k+ sockets the autotuned default would
    // otherwise let slow readers eat megabytes each before backpressure can act.
    let config = MuxConfig { socket_send_buffer: Some(64 << 10), ..MuxConfig::default() };
    let mut server = MuxServer::bind("127.0.0.1:0", core, config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    if churn {
        // Connections are numbered from 1 in accept order; the console connects first.
        server.core_mut().grant_admin(1);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            server.run(&stop, Duration::from_millis(1)).expect("event loop");
            server
        })
    };

    // The console connects (and round-trips, pinning accept order) before any tenant.
    let console = churn.then(|| {
        let mut stream = connect(addr);
        send(&mut stream, &Request::Admin(AdminRequest::PoiDelete { poi: u64::MAX }));
        let ack = read_batch(&mut stream).expect("console ack");
        assert!(
            matches!(
                ack.first(),
                Some(Response::Notification { kind: NotificationKind::UnknownPoi, .. })
            ),
            "the console must come up granted, got {ack:?}"
        );
        stream
    });

    let barrier = Arc::new(Barrier::new(knobs.threads + 1));
    let workers: Vec<_> = (0..knobs.threads)
        .map(|t| {
            let shared_epochs = Arc::clone(shared_epochs);
            let barrier = Arc::clone(&barrier);
            let group_size = knobs.group_size;
            let slice = knobs.conns / knobs.threads + usize::from(t < knobs.conns % knobs.threads);
            thread::spawn(move || client_thread(addr, slice, group_size, &shared_epochs, &barrier))
        })
        .collect();

    barrier.wait(); // All connections registered; the measured phase starts now.
    let t0 = Instant::now();

    // The churn loop: delete the POI the fleet's answers serve (breaking every group),
    // then re-insert it at the same spot (undercutting every replacement optimum).  Each
    // change sweeps the invalidation predicates over all sessions inside the measured
    // window; the re-insert's ack names the fresh id, keeping the loop self-sustaining.
    let churn_stop = Arc::new(AtomicBool::new(false));
    let churn_thread = console.map(|mut stream| {
        let churn_stop = Arc::clone(&churn_stop);
        let interval = Duration::from_millis(knobs.churn_ms);
        thread::spawn(move || {
            let mut target = target;
            let mut changes = 0usize;
            while !churn_stop.load(Ordering::Relaxed) {
                send(&mut stream, &Request::Admin(AdminRequest::PoiDelete { poi: target }));
                applied_poi(&read_batch(&mut stream).expect("delete ack"));
                changes += 1;
                thread::sleep(interval);
                send(&mut stream, &Request::Admin(AdminRequest::PoiInsert { location: spot }));
                target = applied_poi(&read_batch(&mut stream).expect("insert ack"));
                changes += 1;
                thread::sleep(interval);
            }
            changes
        })
    });

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(knobs.conns * knobs.epochs);
    let mut regions = 0usize;
    let mut pushes = 0usize;
    for worker in workers {
        let outcome = worker.join().expect("client thread");
        latencies_ms.extend(outcome.latencies_ms);
        regions += outcome.regions;
        pushes += outcome.pushes;
    }
    let elapsed = t0.elapsed();
    churn_stop.store(true, Ordering::Relaxed);
    let world_changes = churn_thread.map_or(0, |t| t.join().expect("churn thread"));

    stop.store(true, Ordering::Relaxed);
    let server = server_thread.join().expect("event loop thread");
    let stats = *server.stats();
    let expected = knobs.conns + usize::from(churn);
    assert_eq!(stats.accepted as usize, expected, "every connection was accepted");
    // One engine-wide snapshot instead of per-accessor pokes (see mpn-sim's EngineReport).
    let report = server.core().engine().report();
    assert_eq!(report.groups, 0, "every session deregistered");
    assert!(regions > 0, "the load produced real safe-region traffic");
    let exec = report.exec;
    assert!(
        exec.cache_hit_rate() >= 0.5,
        "identical groups must share the query cache (got {:.1}% hit rate)",
        exec.cache_hit_rate() * 100.0
    );

    // The batch percentile path sorts the samples once for all three quantiles.
    let quantiles = percentiles(&latencies_ms, &[50.0, 99.0, 100.0]);
    PhaseOutcome {
        elapsed,
        requests: knobs.conns * knobs.epochs,
        stats,
        p50: quantiles[0],
        p99: quantiles[1],
        max: quantiles[2],
        world_changes,
        pushes,
        exec,
    }
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_read_timeout(Some(Duration::from_secs(300))).expect("read timeout");
    stream
}

fn send(stream: &mut TcpStream, request: &Request) {
    stream.write_all(&request.encoded()).expect("uplink write");
}

/// Extracts the POI id an `AdminApplied` ack names; panics on a denial (a mis-granted run
/// would otherwise silently measure nothing).
fn applied_poi(batch: &[Response]) -> u64 {
    batch
        .iter()
        .find_map(|r| match r {
            Response::Notification { group, kind: NotificationKind::AdminApplied } => Some(*group),
            _ => None,
        })
        .expect("the console's change must be applied")
}

struct WorkerOutcome {
    latencies_ms: Vec<f64>,
    regions: usize,
    pushes: usize,
}

/// Drives `count` lock-step connections: register all, wait at the barrier, stream every
/// epoch (timing each round-trip), deregister all.
///
/// Under churn a connection may receive unsolicited push batches (`WorldUpdate` + revised
/// regions) in place of — or merged with — a report reply.  The lock-step loop still reads
/// exactly one batch per report (each report produces exactly one reply batch; pushes only
/// add more), so nothing deadlocks; any push batches still in flight at the end are drained
/// while waiting for the deregistration farewell.
fn client_thread(
    addr: std::net::SocketAddr,
    count: usize,
    group_size: usize,
    epochs: &[Vec<Point>],
    barrier: &Barrier,
) -> WorkerOutcome {
    let config = WireConfig {
        objective: WireObjective::Max,
        method: WireMethod::Circle,
        compress_regions: true,
        persist_buffers: false,
        max_timestamps: None,
    };

    let mut conns: Vec<(TcpStream, u64)> = Vec::with_capacity(count);
    for _ in 0..count {
        let mut stream = connect(addr);
        send(&mut stream, &Request::Register { group_size: group_size as u32, config });
        let ack = read_batch(&mut stream).expect("registration ack");
        let id = ack
            .iter()
            .find_map(|r| match r {
                Response::Notification { group, kind: NotificationKind::Registered } => {
                    Some(*group)
                }
                _ => None,
            })
            .expect("registered id");
        conns.push((stream, id));
    }

    barrier.wait();
    let mut latencies_ms = Vec::with_capacity(count * epochs.len().saturating_sub(1));
    let mut regions = 0usize;
    let mut pushes = 0usize;
    let mut sent_at = vec![Instant::now(); count];
    for positions in epochs.iter().take(epochs.len() - 1) {
        // Fan the epoch out over every connection first, then collect the batches: the
        // server sees genuine multiplexed fan-in, not one isolated socket at a time.
        for (i, (stream, id)) in conns.iter_mut().enumerate() {
            sent_at[i] = Instant::now();
            send(stream, &Request::Report { group: *id, positions: positions.clone() });
        }
        for (i, (stream, _)) in conns.iter_mut().enumerate() {
            let batch = read_batch(stream).expect("epoch downlink");
            latencies_ms.push(sent_at[i].elapsed().as_secs_f64() * 1_000.0);
            regions += batch.iter().filter(|r| matches!(r, Response::SafeRegion { .. })).count();
            pushes += batch.iter().filter(|r| matches!(r, Response::WorldUpdate { .. })).count();
        }
    }

    for (stream, id) in &mut conns {
        send(stream, &Request::Deregister { group: *id });
        // Drain any still-in-flight push batches until the farewell arrives.
        loop {
            let batch = read_batch(stream).expect("deregistration ack");
            pushes += batch.iter().filter(|r| matches!(r, Response::WorldUpdate { .. })).count();
            if batch.contains(&Response::Notification {
                group: *id,
                kind: NotificationKind::Deregistered,
            }) {
                break;
            }
        }
    }
    WorkerOutcome { latencies_ms, regions, pushes }
}
