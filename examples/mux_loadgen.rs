//! Loopback load generator for the multiplexed front-end: one event-loop thread, one shared
//! engine, 1000+ concurrent lock-step connections.
//!
//! A `MuxServer` runs on its own thread; a few client threads each own a slice of the
//! connections and drive them in lock-step rounds (send one report per connection, then read
//! each connection's response batch).  Every epoch round-trip is timed from the uplink write
//! to the complete batch read, giving per-notification latency under full fan-in; the server
//! stats give tick and request throughput.  Results land in `BENCH_6.json`.
//!
//! Environment knobs (defaults in parentheses): `MPN_CONNS` (1024) total connections,
//! `MPN_EPOCHS` (20) reports per connection, `MPN_GROUP` (3) users per group, `MPN_SHARDS`
//! (4) engine shards, `MPN_CLIENT_THREADS` (8), `MPN_OUT` (`BENCH_6.json`).
//!
//! Run with: `cargo run --release --example mux_loadgen`

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use mpn::geom::Point;
use mpn::index::RTree;
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{taxi_trajectory, TaxiConfig};
use mpn::mobility::Trajectory;
use mpn::net::{read_batch, MuxConfig, MuxServer};
use mpn::proto::{NotificationKind, Request, Response, WireConfig, WireMethod, WireObjective};
use mpn::sim::{ServerCore, TrajectoryFeed};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let conns = env_usize("MPN_CONNS", 1024);
    let epochs = env_usize("MPN_EPOCHS", 20);
    let group_size = env_usize("MPN_GROUP", 3);
    let shards = env_usize("MPN_SHARDS", 4);
    let threads = env_usize("MPN_CLIENT_THREADS", 8).max(1);
    let out_path = std::env::var("MPN_OUT").unwrap_or_else(|_| "BENCH_6.json".into());

    println!(
        "mux loadgen: {conns} connections x {epochs} epochs, groups of {group_size}, \
         {shards} shards, {threads} client threads"
    );

    let pois = clustered_pois(
        &PoiConfig { count: 2_000, domain: 4_000.0, clusters: 8, ..PoiConfig::default() },
        29,
    );
    let core = ServerCore::new(Arc::new(RTree::bulk_load(&pois)), shards);
    // Pin per-connection kernel send buffers: at 1k+ sockets the autotuned default would
    // otherwise let slow readers eat megabytes each before backpressure can act.
    let config = MuxConfig { socket_send_buffer: Some(64 << 10), ..MuxConfig::default() };
    let mut server = MuxServer::bind("127.0.0.1:0", core, config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");

    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            server.run(&stop, Duration::from_millis(1)).expect("event loop");
            server
        })
    };

    // Every connection replays the same recorded epochs: the load is in the fan-in, not in
    // trajectory diversity.
    let taxi = TaxiConfig {
        domain: 4_000.0,
        speed_limit: 9.0,
        timestamps: epochs + 1,
        ..TaxiConfig::default()
    };
    let group: Vec<Trajectory> =
        (0..group_size).map(|i| taxi_trajectory(&taxi, 7_000 + i as u64)).collect();
    let mut feed = TrajectoryFeed::new(group);
    let mut shared_epochs: Vec<Vec<Point>> = Vec::with_capacity(epochs + 1);
    while let Some(positions) = feed.next_epoch() {
        shared_epochs.push(positions);
    }
    let shared_epochs = Arc::new(shared_epochs);

    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let shared_epochs = Arc::clone(&shared_epochs);
            let barrier = Arc::clone(&barrier);
            let slice = conns / threads + usize::from(t < conns % threads);
            thread::spawn(move || client_thread(addr, slice, group_size, &shared_epochs, &barrier))
        })
        .collect();

    barrier.wait(); // All connections registered; the measured phase starts now.
    let t0 = Instant::now();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(conns * epochs);
    let mut regions = 0usize;
    for worker in workers {
        let outcome = worker.join().expect("client thread");
        latencies_ms.extend(outcome.latencies_ms);
        regions += outcome.regions;
    }
    let elapsed = t0.elapsed();

    stop.store(true, Ordering::Relaxed);
    let server = server_thread.join().expect("event loop thread");
    let stats = *server.stats();
    assert_eq!(stats.accepted as usize, conns, "every connection was accepted");
    assert_eq!(server.core().engine().group_count(), 0, "every session deregistered");
    assert!(regions > 0, "the load produced real safe-region traffic");

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| latencies_ms[((latencies_ms.len() - 1) as f64 * p) as usize];
    let (p50, p99, max) = (pct(0.50), pct(0.99), *latencies_ms.last().expect("samples"));

    let requests = conns * epochs;
    let elapsed_ms = elapsed.as_secs_f64() * 1_000.0;
    let requests_per_sec = requests as f64 / elapsed.as_secs_f64();
    let ticks_per_sec = stats.ticks as f64 / elapsed.as_secs_f64();

    println!(
        "\n{} report round-trips over {} connections in {:.1} ms on one event-loop thread",
        requests, conns, elapsed_ms
    );
    println!(
        "throughput: {requests_per_sec:.0} requests/s, {ticks_per_sec:.0} engine ticks/s \
         ({} ticks total)",
        stats.ticks
    );
    println!("notification latency: p50 {p50:.3} ms, p99 {p99:.3} ms, max {max:.3} ms");
    println!(
        "wire: {} B uplink, {} B downlink, {} responses, {} safe regions",
        stats.bytes_in, stats.bytes_out, stats.responses, regions
    );

    let json = format!(
        "{{\n  \"bench\": \"mux_loadgen\",\n  \"pr\": 6,\n  \"connections\": {conns},\n  \
         \"epochs_per_client\": {epochs},\n  \"group_size\": {group_size},\n  \
         \"shards\": {shards},\n  \"client_threads\": {threads},\n  \
         \"elapsed_ms\": {elapsed_ms:.1},\n  \"requests\": {requests},\n  \
         \"requests_per_sec\": {requests_per_sec:.1},\n  \"engine_ticks\": {ticks},\n  \
         \"ticks_per_sec\": {ticks_per_sec:.1},\n  \"latency_ms\": {{\n    \
         \"p50\": {p50:.3},\n    \"p99\": {p99:.3},\n    \"max\": {max:.3}\n  }}\n}}\n",
        ticks = stats.ticks,
    );
    let mut file = std::fs::File::create(&out_path).expect("create bench output");
    file.write_all(json.as_bytes()).expect("write bench output");
    println!("\nwrote {out_path}");
}

struct WorkerOutcome {
    latencies_ms: Vec<f64>,
    regions: usize,
}

/// Drives `count` lock-step connections: register all, wait at the barrier, stream every
/// epoch (timing each round-trip), deregister all.
fn client_thread(
    addr: std::net::SocketAddr,
    count: usize,
    group_size: usize,
    epochs: &[Vec<Point>],
    barrier: &Barrier,
) -> WorkerOutcome {
    let config = WireConfig {
        objective: WireObjective::Max,
        method: WireMethod::Circle,
        compress_regions: true,
        persist_buffers: false,
        max_timestamps: None,
    };

    let mut conns: Vec<(TcpStream, u64)> = Vec::with_capacity(count);
    for _ in 0..count {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_read_timeout(Some(Duration::from_secs(300))).expect("read timeout");
        stream
            .write_all(&Request::Register { group_size: group_size as u32, config }.encoded())
            .expect("send register");
        let ack = read_batch(&mut stream).expect("registration ack");
        let id = ack
            .iter()
            .find_map(|r| match r {
                Response::Notification { group, kind: NotificationKind::Registered } => {
                    Some(*group)
                }
                _ => None,
            })
            .expect("registered id");
        conns.push((stream, id));
    }

    barrier.wait();
    let mut latencies_ms = Vec::with_capacity(count * epochs.len().saturating_sub(1));
    let mut regions = 0usize;
    let mut sent_at = vec![Instant::now(); count];
    for positions in epochs.iter().take(epochs.len() - 1) {
        // Fan the epoch out over every connection first, then collect the batches: the
        // server sees genuine multiplexed fan-in, not one isolated socket at a time.
        for (i, (stream, id)) in conns.iter_mut().enumerate() {
            sent_at[i] = Instant::now();
            stream
                .write_all(&Request::Report { group: *id, positions: positions.clone() }.encoded())
                .expect("send report");
        }
        for (i, (stream, _)) in conns.iter_mut().enumerate() {
            let batch = read_batch(stream).expect("epoch downlink");
            latencies_ms.push(sent_at[i].elapsed().as_secs_f64() * 1_000.0);
            regions += batch.iter().filter(|r| matches!(r, Response::SafeRegion { .. })).count();
        }
    }

    for (stream, id) in &mut conns {
        stream.write_all(&Request::Deregister { group: *id }.encoded()).expect("send deregister");
        let farewell = read_batch(stream).expect("deregistration ack");
        assert!(farewell.contains(&Response::Notification {
            group: *id,
            kind: NotificationKind::Deregistered
        }));
    }
    WorkerOutcome { latencies_ms, regions }
}
