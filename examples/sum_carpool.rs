//! Sum-optimal meeting point scenario (Section 6): a carpool group that wants to minimise the
//! total fuel cost rather than the meeting time, splitting the cost evenly afterwards.
//!
//! The example contrasts the MAX-optimal and SUM-optimal meeting points for the same group and
//! then monitors the group under the SUM objective with the different safe-region methods.
//!
//! Run with: `cargo run --release --example sum_carpool`

use mpn::core::{Method, MpnServer, Objective};
use mpn::geom::{max_dist_to_set, sum_dist_to_set, Point};
use mpn::index::RTree;
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{taxi_trajectory, TaxiConfig};
use mpn::mobility::Trajectory;
use mpn::sim::{MonitorConfig, MonitoringEngine, TrajectoryFeed};
use std::sync::Arc;

fn main() {
    // Park-and-ride lots around the city.
    let lots = clustered_pois(
        &PoiConfig { count: 800, domain: 6_000.0, clusters: 6, ..PoiConfig::default() },
        99,
    );
    let tree = RTree::bulk_load(&lots);

    // Four commuters: three live close together, one lives across town.
    let commuters = vec![
        Point::new(1_000.0, 1_200.0),
        Point::new(1_300.0, 1_000.0),
        Point::new(1_150.0, 1_500.0),
        Point::new(4_800.0, 4_500.0),
    ];

    let max_answer = MpnServer::new(&tree, Objective::Max, Method::circle()).compute(&commuters);
    let sum_answer = MpnServer::new(&tree, Objective::Sum, Method::circle()).compute(&commuters);

    println!("== Carpool: minimise total fuel vs. minimise the slowest arrival ==\n");
    println!(
        "MAX-optimal lot  #{:<4} at {}  (slowest drive {:.0}, total driving {:.0})",
        max_answer.optimal_index,
        max_answer.optimal_point,
        max_dist_to_set(max_answer.optimal_point, &commuters),
        sum_dist_to_set(max_answer.optimal_point, &commuters)
    );
    println!(
        "SUM-optimal lot  #{:<4} at {}  (slowest drive {:.0}, total driving {:.0})\n",
        sum_answer.optimal_index,
        sum_answer.optimal_point,
        max_dist_to_set(sum_answer.optimal_point, &commuters),
        sum_dist_to_set(sum_answer.optimal_point, &commuters)
    );

    // Continuous Sum-MPN monitoring while the commuters drive around.
    let taxi = TaxiConfig {
        domain: 6_000.0,
        speed_limit: 10.0,
        timestamps: 1_000,
        ..TaxiConfig::default()
    };
    // One shared recording, replayed by three sessions (feeds share it via `Arc`).
    let group: Arc<Vec<Trajectory>> =
        Arc::new((0..4).map(|i| taxi_trajectory(&taxi, 710 + i)).collect());
    let mut engine = MonitoringEngine::with_default_shards(tree);
    let methods = [
        ("Circle", Method::circle()),
        ("Tile", Method::tile()),
        ("Tile-D-b", Method::tile_directed_buffered(std::f64::consts::FRAC_PI_4, 100)),
    ];
    let ids: Vec<_> = methods
        .iter()
        .map(|(_, method)| {
            engine.register(
                TrajectoryFeed::new(Arc::clone(&group)),
                MonitorConfig::new(Objective::Sum, *method),
            )
        })
        .collect();
    engine.run_to_completion();

    println!(
        "{:<10} {:>10} {:>14} {:>18}",
        "method", "updates", "update freq", "packets/timestamp"
    );
    for ((label, _), id) in methods.iter().zip(ids) {
        let metrics = engine.group_metrics(id);
        println!(
            "{:<10} {:>10} {:>14.4} {:>18.3}",
            label,
            metrics.updates,
            metrics.update_frequency(),
            metrics.packets_per_timestamp()
        );
    }
}
