//! The mutable world end to end over loopback TCP: cafés close, pop-ups open, and the
//! multiplexed server pushes revised safe regions to exactly the groups each change broke.
//!
//! The cast:
//!
//! * a **city** of cafés in two districts (the POI tree behind a generation-stamped
//!   `WorldView` overlay);
//! * two **groups** of friends converging on a meeting point, one per district, each on its
//!   own multiplexed TCP connection;
//! * an **operator console** — the first accepted connection, granted admin rights out of
//!   band — closing and opening cafés while both groups sit idle.
//!
//! The script demonstrates the whole push pipeline: a closure that breaks the north group's
//! answer arrives at that group as an unsolicited `WorldUpdate` (naming the new world
//! generation) followed by its revised safe regions, while the south group — whose answer
//! and §5.4 buffer never referenced the closed café — receives nothing at all.  A pop-up
//! café right at the north group's meeting point then undercuts its new optimum and
//! triggers a second push.
//!
//! Run with: `cargo run --release --example dynamic_world`

use std::io::{ErrorKind, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mpn::core::{Method, MpnServer, Objective};
use mpn::geom::Point;
use mpn::index::RTree;
use mpn::net::{read_batch, MuxConfig, MuxServer};
use mpn::proto::{
    AdminRequest, NotificationKind, Request, Response, WireConfig, WireMethod, WireObjective,
};
use mpn::sim::ServerCore;

fn main() {
    // The city: 24 cafés in the north district, 24 in the south.
    let cafes: Vec<Point> = (0..48)
        .map(|i| {
            let (cx, cy) = if i < 24 { (200.0, 800.0) } else { (800.0, 200.0) };
            Point::new(cx + (i % 6) as f64 * 12.0, cy + (i / 6 % 4) as f64 * 12.0)
        })
        .collect();
    let tree = Arc::new(RTree::bulk_load(&cafes));
    let north_friends = vec![Point::new(190.0, 815.0), Point::new(245.0, 810.0)];
    let south_friends = vec![Point::new(790.0, 215.0), Point::new(845.0, 210.0)];

    // Where will the north group meet?  Compute it client-side so the console knows which
    // café to close for the demonstration.
    let doomed = MpnServer::new(tree.as_ref(), Objective::Max, Method::circle())
        .compute(&north_friends)
        .optimal_index;

    let core = ServerCore::new(Arc::clone(&tree), 2);
    let mut server =
        MuxServer::bind("127.0.0.1:0", core, MuxConfig::default()).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    // Connections are numbered from 1 in accept order; the console connects first.
    server.core_mut().grant_admin(1);

    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            server.run(&stop, Duration::from_millis(1)).expect("event loop");
            server
        })
    };

    // The console round-trips before the tenants connect, pinning accept order.
    let mut console = connect(addr);
    request(&mut console, &Request::Admin(AdminRequest::PoiDelete { poi: u64::MAX }));
    let ack = read_batch(&mut console).expect("console ack");
    assert!(matches!(
        ack.first(),
        Some(Response::Notification { kind: NotificationKind::UnknownPoi, .. })
    ));
    println!("console online (admin granted, probe answered with UnknownPoi)");

    let (mut north, north_id) = register(addr, &north_friends);
    let (mut south, south_id) = register(addr, &south_friends);
    println!(
        "north group registered as {north_id} ({} regions), south as {south_id} ({} regions)",
        north_friends.len(),
        south_friends.len()
    );

    // Act 1: the north group's café closes.  Both groups are idle — nothing in flight.
    request(&mut console, &Request::Admin(AdminRequest::PoiDelete { poi: doomed as u64 }));
    let ack = read_batch(&mut console).expect("close ack");
    assert_eq!(
        ack,
        vec![Response::Notification { group: doomed as u64, kind: NotificationKind::AdminApplied }]
    );
    println!("\ncafé {doomed} closed;");

    let push = read_batch(&mut north).expect("north push");
    let generation = expect_push(&push, north_id, north_friends.len());
    println!(
        "  north group pushed: WorldUpdate(generation {generation}) + {} revised regions",
        north_friends.len()
    );
    assert!(quiet(&mut south), "the south group must hear nothing about a north closure");
    println!("  south group: silence (its answer never referenced café {doomed})");

    // Act 2: a pop-up café opens right where the north group now plans to meet,
    // undercutting the optimum they were just re-assigned.
    let meeting = push
        .iter()
        .find_map(|r| match r {
            Response::SafeRegion { meeting_point, .. } => Some(*meeting_point),
            _ => None,
        })
        .expect("the push carries the revised meeting point");
    request(&mut console, &Request::Admin(AdminRequest::PoiInsert { location: meeting }));
    let ack = read_batch(&mut console).expect("open ack");
    let popup = match ack.first() {
        Some(Response::Notification { group, kind: NotificationKind::AdminApplied }) => *group,
        other => panic!("expected the pop-up to be applied, got {other:?}"),
    };
    println!("\npop-up café {popup} opened at the north group's meeting point;");

    let push = read_batch(&mut north).expect("north push 2");
    let next_generation = expect_push(&push, north_id, north_friends.len());
    assert!(next_generation > generation, "each change stamps a fresh generation");
    println!("  north group pushed again: WorldUpdate(generation {next_generation})");
    assert!(quiet(&mut south), "a pop-up in the north cannot break the south group");
    println!("  south group: still silence");

    // Curtain: everyone leaves; the world keeps its net change (one closed, one opened).
    for (stream, id) in [(&mut north, north_id), (&mut south, south_id)] {
        request(stream, &Request::Deregister { group: id });
        let farewell = read_batch(stream).expect("farewell");
        assert!(farewell
            .contains(&Response::Notification { group: id, kind: NotificationKind::Deregistered }));
    }
    stop.store(true, Ordering::Relaxed);
    let server = server_thread.join().expect("event loop thread");
    let world = server.core().engine().world();
    assert_eq!(world.len(), cafes.len(), "one café closed, one opened: net zero");
    assert_eq!(server.core().engine().group_count(), 0);
    println!(
        "\ndone: {} cafés live at generation {}, {} compactions, every session deregistered",
        world.len(),
        world.generation(),
        world.compactions()
    );
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    stream
}

fn request(stream: &mut TcpStream, request: &Request) {
    stream.write_all(&request.encoded()).expect("uplink write");
}

/// Registers a two-member group and reports its first positions, returning the connection
/// and the assigned wire group id after the initial safe regions arrived.
fn register(addr: std::net::SocketAddr, friends: &[Point]) -> (TcpStream, u64) {
    let mut stream = connect(addr);
    let config = WireConfig {
        objective: WireObjective::Max,
        method: WireMethod::Circle,
        ..WireConfig::default()
    };
    request(&mut stream, &Request::Register { group_size: friends.len() as u32, config });
    let ack = read_batch(&mut stream).expect("registration ack");
    let id = ack
        .iter()
        .find_map(|r| match r {
            Response::Notification { group, kind: NotificationKind::Registered } => Some(*group),
            _ => None,
        })
        .expect("registered id");
    request(&mut stream, &Request::Report { group: id, positions: friends.to_vec() });
    let first = read_batch(&mut stream).expect("initial regions");
    assert_eq!(
        first.iter().filter(|r| matches!(r, Response::SafeRegion { .. })).count(),
        friends.len()
    );
    (stream, id)
}

/// Asserts `batch` is a well-formed unsolicited push for `group`: a `WorldUpdate` heading
/// `revised` safe regions.  Returns the announced world generation.
fn expect_push(batch: &[Response], group: u64, revised: usize) -> u64 {
    let generation = match batch.first() {
        Some(&Response::WorldUpdate { group: g, generation, revised: r }) => {
            assert_eq!(g, group);
            assert_eq!(r as usize, revised);
            generation
        }
        other => panic!("expected a WorldUpdate heading the push, got {other:?}"),
    };
    assert_eq!(
        batch.iter().filter(|r| matches!(r, Response::SafeRegion { .. })).count(),
        revised,
        "the push must carry every revised region"
    );
    generation
}

/// Whether nothing arrives on `stream` within a short grace window (the connection is
/// expected to stay silent).
fn quiet(stream: &mut TcpStream) -> bool {
    stream.set_read_timeout(Some(Duration::from_millis(300))).expect("read timeout");
    let silent = match read_batch(stream) {
        Err(e) => matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
        Ok(batch) => panic!("expected silence, got {batch:?}"),
    };
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    silent
}
