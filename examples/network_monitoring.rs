//! Network monitoring: the Fig. 3 client/server protocol, for real.
//!
//! Three demonstrations of the `mpn-proto` + `ServerCore` stack — the three front-end paths
//! described in `mpn-net`'s crate docs:
//!
//! 1. **In-process** — a front-end drains decoded `Request`s straight into sharded engine
//!    ticks: two phone groups register with different objectives/methods, stream their
//!    epochs, and receive probe requests and safe-region assignments back.
//! 2. **Blocking TCP** — the same protocol over `std::net::TcpStream` using
//!    `mpn::net::serve_blocking`: one thread, one connection, whole-frame blocking reads,
//!    responses under the count-prefixed batch envelope.
//! 3. **Multiplexed** — `mpn::net::MuxServer`: one event-loop thread serving many concurrent
//!    lock-step clients over non-blocking sockets, all sharing one engine.
//!
//! Over the socket each uplink request is answered with a 4-byte little-endian response
//! count followed by that many response frames (`mpn::net::read_batch`) — the count makes
//! quiet epochs observable, so lock-step clients never guess from read timeouts.
//!
//! Run with: `cargo run --release --example network_monitoring`

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mpn::index::RTree;
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{taxi_trajectory, TaxiConfig};
use mpn::mobility::Trajectory;
use mpn::net::{read_batch, serve_blocking, MuxConfig, MuxServer};
use mpn::proto::{NotificationKind, Request, Response, WireConfig, WireMethod, WireObjective};
use mpn::sim::{MonitoringServer, ServerCore, TrajectoryFeed};

/// Epochs each client streams before deregistering.
const EPOCHS: usize = 150;

fn main() {
    let pois = clustered_pois(
        &PoiConfig { count: 1_500, domain: 4_000.0, clusters: 6, ..PoiConfig::default() },
        13,
    );
    let tree = Arc::new(RTree::bulk_load(&pois));

    in_process_demo(Arc::clone(&tree));
    blocking_tcp_demo(Arc::clone(&tree));
    multiplexed_demo(tree);
}

/// A moving group as a protocol client sees it: a recording it reports epoch by epoch.
fn phone_group(seed: u64, size: usize) -> TrajectoryFeed {
    phone_group_epochs(seed, size, EPOCHS)
}

fn phone_group_epochs(seed: u64, size: usize, epochs: usize) -> TrajectoryFeed {
    let taxi = TaxiConfig {
        domain: 4_000.0,
        speed_limit: 9.0,
        timestamps: epochs,
        ..TaxiConfig::default()
    };
    let group: Vec<Trajectory> =
        (0..size).map(|i| taxi_trajectory(&taxi, seed + i as u64)).collect();
    TrajectoryFeed::new(group)
}

fn registered_id(responses: &[Response]) -> u64 {
    responses
        .iter()
        .find_map(|r| match r {
            Response::Notification { group, kind: NotificationKind::Registered } => Some(*group),
            _ => None,
        })
        .expect("the server acknowledges a registration")
}

/// Tally of the downlink messages one client received.
#[derive(Default)]
struct Downlink {
    probes: usize,
    assignments: usize,
    epochs_with_update: usize,
}

impl Downlink {
    fn absorb(&mut self, responses: &[Response]) {
        let before = self.assignments;
        for response in responses {
            match response {
                Response::ProbeRequest { .. } => self.probes += 1,
                Response::SafeRegion { .. } => self.assignments += 1,
                Response::Notification { .. } | Response::WorldUpdate { .. } => {}
            }
        }
        if self.assignments > before {
            self.epochs_with_update += 1;
        }
    }
}

fn in_process_demo(tree: Arc<RTree>) {
    println!("== In-process: a request queue drained into sharded engine ticks ==\n");
    let mut server = MonitoringServer::new(tree, 4);

    let configs = [
        (
            "friends/MAX/Tile-D-b",
            WireConfig {
                objective: WireObjective::Max,
                method: WireMethod::TileDirectedBuffered {
                    theta: std::f64::consts::FRAC_PI_4,
                    buffer: 100,
                },
                compress_regions: true,
                persist_buffers: true,
                max_timestamps: None,
            },
        ),
        (
            "carpool/SUM/Circle",
            WireConfig {
                objective: WireObjective::Sum,
                method: WireMethod::Circle,
                compress_regions: true,
                persist_buffers: false,
                max_timestamps: None,
            },
        ),
    ];

    let mut feeds = [phone_group(1_000, 3), phone_group(2_000, 4)];
    let mut ids = Vec::new();
    for ((_, config), feed) in configs.iter().zip(&feeds) {
        server.enqueue(Request::Register { group_size: feed.group_size() as u32, config: *config });
    }
    let responses = server.process();
    for response in &responses {
        if let Response::Notification { group, kind: NotificationKind::Registered } = response {
            ids.push(*group);
        }
    }
    println!("registered groups {ids:?} ({} shards)\n", server.engine().shard_count());

    let mut tallies = [Downlink::default(), Downlink::default()];
    for _ in 0..EPOCHS {
        for (feed, &id) in feeds.iter_mut().zip(&ids) {
            let positions = feed.next_epoch().expect("the recording covers every epoch");
            server.enqueue(Request::Report { group: id, positions });
        }
        let responses = server.process();
        for (tally, &id) in tallies.iter_mut().zip(&ids) {
            let own: Vec<Response> = responses
                .iter()
                .filter(|r| {
                    matches!(r,
                    Response::SafeRegion { group, .. }
                    | Response::ProbeRequest { group, .. }
                    | Response::Notification { group, .. } if *group == id)
                })
                .cloned()
                .collect();
            tally.absorb(&own);
        }
    }

    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>14}",
        "group", "updates", "probes", "regions", "packets"
    );
    for ((label, _), (tally, &id)) in configs.iter().zip(tallies.iter().zip(&ids)) {
        let metrics = server.engine().group_metrics(id as usize);
        println!(
            "{:<22} {:>8} {:>12} {:>12} {:>14}",
            label,
            tally.epochs_with_update,
            tally.probes,
            tally.assignments,
            metrics.packets()
        );
        server.enqueue(Request::Deregister { group: id });
    }
    let farewells = server.process();
    assert!(farewells
        .iter()
        .all(|r| matches!(r, Response::Notification { kind: NotificationKind::Deregistered, .. })));
    println!(
        "\nboth groups deregistered; fleet lifetime totals: {} updates, {} packets\n",
        server.engine().fleet_metrics().updates,
        server.engine().fleet_metrics().packets()
    );
}

// ---------------------------------------------------------------------------------------
// Loopback TCP, blocking path
// ---------------------------------------------------------------------------------------

/// Registers, streams `feed` to the end, deregisters — the full lock-step client lifetime.
fn lock_step_session(stream: &mut TcpStream, mut feed: TrajectoryFeed) -> (Downlink, usize) {
    let config = WireConfig {
        objective: WireObjective::Max,
        method: WireMethod::Tile,
        compress_regions: true,
        persist_buffers: false,
        max_timestamps: None,
    };
    stream
        .write_all(&Request::Register { group_size: feed.group_size() as u32, config }.encoded())
        .expect("send register");
    let id = registered_id(&read_batch(stream).expect("registration ack"));

    let mut tally = Downlink::default();
    let mut wire_bytes = 0usize;
    while let Some(positions) = feed.next_epoch() {
        let frame = Request::Report { group: id, positions }.encoded();
        wire_bytes += frame.len();
        stream.write_all(&frame).expect("send report");
        tally.absorb(&read_batch(stream).expect("epoch downlink"));
    }

    stream.write_all(&Request::Deregister { group: id }.encoded()).expect("send deregister");
    let farewell = read_batch(stream).expect("deregistration ack");
    assert!(
        farewell
            .contains(&Response::Notification { group: id, kind: NotificationKind::Deregistered }),
        "the server must acknowledge the deregistration"
    );
    (tally, wire_bytes)
}

fn blocking_tcp_demo(tree: Arc<RTree>) {
    println!("== Loopback TCP, blocking path: one thread, one connection ==\n");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server_thread = thread::spawn(move || {
        let (mut stream, peer) = listener.accept().expect("accept the demo client");
        println!("server: accepted {peer}");
        let mut core = ServerCore::new(tree, 4);
        serve_blocking(&mut stream, &mut core, 1).expect("serve the demo client");
        println!("server: client disconnected, shutting down");
    });

    let mut stream = TcpStream::connect(addr).expect("connect to loopback server");
    let (tally, wire_bytes) = lock_step_session(&mut stream, phone_group(3_000, 3));
    println!(
        "client: {} epochs streamed ({} uplink bytes): {} updates, {} probes, {} safe regions",
        EPOCHS, wire_bytes, tally.epochs_with_update, tally.probes, tally.assignments
    );
    println!("client: deregistered cleanly");
    drop(stream);
    server_thread.join().expect("server thread exits cleanly");
}

// ---------------------------------------------------------------------------------------
// Loopback TCP, multiplexed path
// ---------------------------------------------------------------------------------------

fn multiplexed_demo(tree: Arc<RTree>) {
    const CLIENTS: usize = 12;
    const MUX_EPOCHS: usize = 60;

    println!("\n== Loopback TCP, multiplexed: one event loop, {CLIENTS} concurrent clients ==\n");
    let core = ServerCore::new(tree, 4);
    let mut server =
        MuxServer::bind("127.0.0.1:0", core, MuxConfig::default()).expect("bind mux loopback");
    let addr = server.local_addr().expect("local addr");

    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            server.run(&stop, Duration::from_millis(1)).expect("event loop");
            server
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect to mux server");
                stream.set_nodelay(true).expect("nodelay");
                lock_step_session(
                    &mut stream,
                    phone_group_epochs(10_000 + 100 * i as u64, 3, MUX_EPOCHS),
                )
            })
        })
        .collect();

    let mut total = Downlink::default();
    for client in clients {
        let (tally, _) = client.join().expect("client thread");
        total.probes += tally.probes;
        total.assignments += tally.assignments;
        total.epochs_with_update += tally.epochs_with_update;
    }
    stop.store(true, Ordering::Relaxed);
    let server = server_thread.join().expect("event loop thread");

    let stats = server.stats();
    println!(
        "event loop: {} conns accepted, {} requests in {} ticks, {} responses, {} B in / {} B out",
        stats.accepted,
        stats.requests,
        stats.ticks,
        stats.responses,
        stats.bytes_in,
        stats.bytes_out
    );
    println!(
        "clients: {} updates, {} probes, {} safe regions across {CLIENTS} concurrent sessions",
        total.epochs_with_update, total.probes, total.assignments
    );
    assert_eq!(stats.accepted, CLIENTS as u64);
    assert_eq!(server.core().engine().group_count(), 0, "every session deregistered");
    println!("\nall {CLIENTS} clients deregistered cleanly; engine is empty");
}
