//! Network monitoring: the Fig. 3 client/server protocol, for real.
//!
//! Two demonstrations of the `mpn-proto` + `MonitoringServer` stack:
//!
//! 1. **In-process** — a front-end drains decoded `Request`s straight into sharded engine
//!    ticks: two phone groups register with different objectives/methods, stream their
//!    epochs, and receive probe requests and safe-region assignments back.
//! 2. **Loopback TCP** — the same protocol over `std::net::TcpStream` using the compact
//!    length-prefixed binary codec: a server thread accepts one client, decodes uplink
//!    frames, ticks the engine, and writes the downlink frames back.  The client registers,
//!    reports its epochs, and deregisters — the full register → report → notification round
//!    trip on a real socket.
//!
//! Over the socket each uplink request is answered with a 4-byte little-endian response
//! count followed by that many response frames — a minimal example-level envelope so the
//! client knows when an epoch's downlink is complete (a quiet epoch legitimately produces
//! zero responses).
//!
//! Run with: `cargo run --release --example network_monitoring`

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use mpn::index::RTree;
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{taxi_trajectory, TaxiConfig};
use mpn::mobility::Trajectory;
use mpn::proto::{
    read_frame, NotificationKind, Request, Response, WireConfig, WireMethod, WireObjective,
};
use mpn::sim::{MonitoringServer, TrajectoryFeed};

/// Epochs each client streams before deregistering.
const EPOCHS: usize = 150;

fn main() {
    let pois = clustered_pois(
        &PoiConfig { count: 1_500, domain: 4_000.0, clusters: 6, ..PoiConfig::default() },
        13,
    );
    let tree = Arc::new(RTree::bulk_load(&pois));

    in_process_demo(Arc::clone(&tree));
    tcp_demo(tree);
}

/// A moving group as a protocol client sees it: a recording it reports epoch by epoch.
fn phone_group(seed: u64, size: usize) -> TrajectoryFeed {
    let taxi = TaxiConfig {
        domain: 4_000.0,
        speed_limit: 9.0,
        timestamps: EPOCHS,
        ..TaxiConfig::default()
    };
    let group: Vec<Trajectory> =
        (0..size).map(|i| taxi_trajectory(&taxi, seed + i as u64)).collect();
    TrajectoryFeed::new(group)
}

fn registered_id(responses: &[Response]) -> u64 {
    responses
        .iter()
        .find_map(|r| match r {
            Response::Notification { group, kind: NotificationKind::Registered } => Some(*group),
            _ => None,
        })
        .expect("the server acknowledges a registration")
}

/// Tally of the downlink messages one client received.
#[derive(Default)]
struct Downlink {
    probes: usize,
    assignments: usize,
    epochs_with_update: usize,
}

impl Downlink {
    fn absorb(&mut self, responses: &[Response]) {
        let before = self.assignments;
        for response in responses {
            match response {
                Response::ProbeRequest { .. } => self.probes += 1,
                Response::SafeRegion { .. } => self.assignments += 1,
                Response::Notification { .. } => {}
            }
        }
        if self.assignments > before {
            self.epochs_with_update += 1;
        }
    }
}

fn in_process_demo(tree: Arc<RTree>) {
    println!("== In-process: a request queue drained into sharded engine ticks ==\n");
    let mut server = MonitoringServer::new(tree, 4);

    let configs = [
        (
            "friends/MAX/Tile-D-b",
            WireConfig {
                objective: WireObjective::Max,
                method: WireMethod::TileDirectedBuffered {
                    theta: std::f64::consts::FRAC_PI_4,
                    buffer: 100,
                },
                compress_regions: true,
                persist_buffers: true,
                max_timestamps: None,
            },
        ),
        (
            "carpool/SUM/Circle",
            WireConfig {
                objective: WireObjective::Sum,
                method: WireMethod::Circle,
                compress_regions: true,
                persist_buffers: false,
                max_timestamps: None,
            },
        ),
    ];

    let mut feeds = [phone_group(1_000, 3), phone_group(2_000, 4)];
    let mut ids = Vec::new();
    for ((_, config), feed) in configs.iter().zip(&feeds) {
        server.enqueue(Request::Register { group_size: feed.group_size() as u32, config: *config });
    }
    let responses = server.process();
    for response in &responses {
        if let Response::Notification { group, kind: NotificationKind::Registered } = response {
            ids.push(*group);
        }
    }
    println!("registered groups {ids:?} ({} shards)\n", server.engine().shard_count());

    let mut tallies = [Downlink::default(), Downlink::default()];
    for _ in 0..EPOCHS {
        for (feed, &id) in feeds.iter_mut().zip(&ids) {
            let positions = feed.next_epoch().expect("the recording covers every epoch");
            server.enqueue(Request::Report { group: id, positions });
        }
        let responses = server.process();
        for (tally, &id) in tallies.iter_mut().zip(&ids) {
            let own: Vec<Response> = responses
                .iter()
                .filter(|r| {
                    matches!(r,
                    Response::SafeRegion { group, .. }
                    | Response::ProbeRequest { group, .. }
                    | Response::Notification { group, .. } if *group == id)
                })
                .cloned()
                .collect();
            tally.absorb(&own);
        }
    }

    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>14}",
        "group", "updates", "probes", "regions", "packets"
    );
    for ((label, _), (tally, &id)) in configs.iter().zip(tallies.iter().zip(&ids)) {
        let metrics = server.engine().group_metrics(id as usize);
        println!(
            "{:<22} {:>8} {:>12} {:>12} {:>14}",
            label,
            tally.epochs_with_update,
            tally.probes,
            tally.assignments,
            metrics.packets()
        );
        server.enqueue(Request::Deregister { group: id });
    }
    let farewells = server.process();
    assert!(farewells
        .iter()
        .all(|r| matches!(r, Response::Notification { kind: NotificationKind::Deregistered, .. })));
    println!(
        "\nboth groups deregistered; fleet lifetime totals: {} updates, {} packets\n",
        server.engine().fleet_metrics().updates,
        server.engine().fleet_metrics().packets()
    );
}

// ---------------------------------------------------------------------------------------
// Loopback TCP
// ---------------------------------------------------------------------------------------

/// Serves one client connection: decode uplink frames, tick, write the downlink back.
fn serve_connection(mut stream: TcpStream, tree: Arc<RTree>) -> std::io::Result<()> {
    let mut server = MonitoringServer::new(tree, 4);
    while let Some(frame) = read_frame(&mut stream)? {
        let (request, _) = Request::decode(&frame)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        server.enqueue(request);
        let responses = server.process();
        stream.write_all(&u32::try_from(responses.len()).expect("batch fits u32").to_le_bytes())?;
        for response in &responses {
            stream.write_all(&response.encoded())?;
        }
    }
    Ok(())
}

/// Reads one response batch (count header + frames) off the socket.
fn recv_batch(stream: &mut TcpStream) -> std::io::Result<Vec<Response>> {
    let mut count_bytes = [0u8; 4];
    stream.read_exact(&mut count_bytes)?;
    let count = u32::from_le_bytes(count_bytes) as usize;
    let mut responses = Vec::with_capacity(count);
    for _ in 0..count {
        let frame = read_frame(stream)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "stream closed mid-batch")
        })?;
        let (response, _) = Response::decode(&frame)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        responses.push(response);
    }
    Ok(responses)
}

fn tcp_demo(tree: Arc<RTree>) {
    println!("== Loopback TCP: the same protocol over a real socket ==\n");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server_thread = thread::spawn(move || {
        let (stream, peer) = listener.accept().expect("accept the demo client");
        println!("server: accepted {peer}");
        serve_connection(stream, tree).expect("serve the demo client");
        println!("server: client disconnected, shutting down");
    });

    let mut stream = TcpStream::connect(addr).expect("connect to loopback server");
    let mut feed = phone_group(3_000, 3);
    let config = WireConfig {
        objective: WireObjective::Max,
        method: WireMethod::Tile,
        compress_regions: true,
        persist_buffers: false,
        max_timestamps: None,
    };

    // Register → the server assigns a group id.
    stream
        .write_all(&Request::Register { group_size: feed.group_size() as u32, config }.encoded())
        .expect("send register");
    let responses = recv_batch(&mut stream).expect("registration ack");
    let id = registered_id(&responses);
    println!("client: registered as group {id} at {addr}");

    // Report every epoch; collect the downlink.
    let mut tally = Downlink::default();
    let mut wire_bytes = 0usize;
    for _ in 0..EPOCHS {
        let positions = feed.next_epoch().expect("the recording covers every epoch");
        let frame = Request::Report { group: id, positions }.encoded();
        wire_bytes += frame.len();
        stream.write_all(&frame).expect("send report");
        tally.absorb(&recv_batch(&mut stream).expect("epoch downlink"));
    }
    assert!(tally.assignments > 0, "the round trip must deliver safe-region notifications");
    println!(
        "client: {} epochs streamed ({} uplink bytes): {} updates, {} probes, {} safe regions",
        EPOCHS, wire_bytes, tally.epochs_with_update, tally.probes, tally.assignments
    );

    // Deregister and disconnect; the server thread exits on EOF.
    stream.write_all(&Request::Deregister { group: id }.encoded()).expect("send deregister");
    let farewell = recv_batch(&mut stream).expect("deregistration ack");
    assert!(
        farewell
            .contains(&Response::Notification { group: id, kind: NotificationKind::Deregistered }),
        "the server must acknowledge the deregistration"
    );
    println!("client: deregistered cleanly");
    drop(stream);
    server_thread.join().expect("server thread exits cleanly");
}
