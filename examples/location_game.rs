//! Location-based game scenario (Tourality-style, Section 1).
//!
//! A team of players moves along a road network and must converge on one of the geographically
//! defined spots as fast as possible.  The server continuously reports the best rendezvous
//! spot under the MAX objective (the spot the slowest player can reach soonest) and uses
//! independent safe regions to avoid flooding the players with updates.
//!
//! Run with: `cargo run --release --example location_game`

use mpn::core::{Method, MpnServer, Objective};
use mpn::index::RTree;
use mpn::mobility::network::{NetworkConfig, RoadNetwork};
use mpn::mobility::poi::uniform_pois;
use mpn::mobility::Trajectory;
use mpn::sim::{MonitorConfig, MonitoringEngine, TrajectoryFeed};
use std::sync::Arc;

fn main() {
    // Game spots scattered uniformly over the map.
    let spots = uniform_pois(500, 8_000.0, 77);
    let tree = RTree::bulk_load(&spots);

    // A road network and a team of four players of different speed classes.
    let net_config =
        NetworkConfig { domain: 8_000.0, timestamps: 1_200, ..NetworkConfig::default() };
    let network = RoadNetwork::generate(&net_config, 5);
    let team: Arc<Vec<Trajectory>> =
        Arc::new((0..4).map(|i| network.trajectory(300 + i as u64, i)).collect());

    println!("== Location-based game: team rendezvous ==\n");
    println!(
        "road network: {} nodes / {} edges   spots: {}   players: {}\n",
        network.node_count(),
        network.edge_count(),
        tree.len(),
        team.len()
    );

    // Snapshot query at the start of the game.
    let start: Vec<_> = team.iter().map(|t| t.at(0)).collect();
    let server = MpnServer::new(&tree, Objective::Max, Method::tile_directed(0.8));
    let answer = server.compute(&start);
    println!(
        "initial rendezvous: spot #{} at {}, worst-case travel distance {:.0}\n",
        answer.optimal_index, answer.optimal_point, answer.optimal_dist
    );

    // Continuous monitoring during the whole game: one engine session per method, and the
    // buffered method additionally reuses its §5.4 GNN buffer across updates.
    let mut engine = MonitoringEngine::with_default_shards(tree);
    let methods = [
        ("Circle", MonitorConfig::new(Objective::Max, Method::circle())),
        ("Tile-D", MonitorConfig::new(Objective::Max, Method::tile_directed(0.8))),
        (
            "Tile-D-b",
            MonitorConfig::new(Objective::Max, Method::tile_directed_buffered(0.8, 100))
                .with_persistent_buffers(true),
        ),
    ];
    let ids: Vec<_> = methods
        .iter()
        .map(|(_, config)| engine.register(TrajectoryFeed::new(Arc::clone(&team)), *config))
        .collect();
    engine.run_to_completion();

    println!(
        "{:<10} {:>10} {:>14} {:>18} {:>14}",
        "method", "updates", "update freq", "packets/timestamp", "rtree q/update"
    );
    for ((label, _), id) in methods.iter().zip(ids) {
        let metrics = engine.group_metrics(id);
        println!(
            "{:<10} {:>10} {:>14.4} {:>18.3} {:>14.2}",
            label,
            metrics.updates,
            metrics.update_frequency(),
            metrics.packets_per_timestamp(),
            metrics.stats.rtree_queries as f64 / metrics.updates as f64
        );
    }
}
