//! Event-calendar scenario (the paper's motivating example, Fig. 1).
//!
//! Three users plan to meet at a restaurant.  They move through the city while the server
//! monitors the optimal meeting point.  The example replays their trajectories and shows how
//! many notifications each safe-region method needs, and how the recommended restaurant
//! changes over time (e.g. after one user hits a traffic jam).
//!
//! Run with: `cargo run --release --example event_calendar`

use mpn::core::{Method, Objective};
use mpn::index::RTree;
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{taxi_trajectory, TaxiConfig};
use mpn::mobility::Trajectory;
use mpn::sim::{MonitorConfig, MonitoringEngine, TrajectoryFeed};
use std::sync::Arc;

fn main() {
    // The restaurant data set: 2,000 POIs clustered around a few neighbourhoods.
    let restaurants = clustered_pois(
        &PoiConfig { count: 2_000, domain: 5_000.0, clusters: 8, ..PoiConfig::default() },
        2024,
    );
    let tree = RTree::bulk_load(&restaurants);

    // Three friends driving around town for 1,500 timestamps.
    let taxi = TaxiConfig {
        domain: 5_000.0,
        speed_limit: 12.0,
        timestamps: 1_500,
        ..TaxiConfig::default()
    };
    let group: Arc<Vec<Trajectory>> =
        Arc::new((0..3).map(|i| taxi_trajectory(&taxi, 90 + i)).collect());

    println!("== Event calendar: continuous restaurant recommendation ==\n");
    println!("restaurants: {}   users: {}   timestamps: {}\n", tree.len(), group.len(), 1_500);

    // One monitoring engine, one session per safe-region method over the same trajectories.
    // A single shard keeps the sessions serial: this table compares per-update CPU times
    // across methods, which must not be measured under cross-session core contention.
    let mut engine = MonitoringEngine::new(tree, 1);
    let methods = [
        ("Circle", Method::circle()),
        ("Tile", Method::tile()),
        ("Tile-D", Method::tile_directed(std::f64::consts::FRAC_PI_4)),
        ("Tile-D-b", Method::tile_directed_buffered(std::f64::consts::FRAC_PI_4, 100)),
    ];
    let ids: Vec<_> = methods
        .iter()
        .map(|(_, method)| {
            engine.register(
                TrajectoryFeed::new(Arc::clone(&group)),
                MonitorConfig::new(Objective::Max, *method),
            )
        })
        .collect();
    engine.run_to_completion();

    println!(
        "{:<10} {:>14} {:>16} {:>18} {:>14}",
        "method", "updates", "update freq", "packets/timestamp", "mean time (us)"
    );
    for ((label, _), id) in methods.iter().zip(ids) {
        let metrics = engine.group_metrics(id);
        println!(
            "{:<10} {:>14} {:>16.4} {:>18.3} {:>14.1}",
            label,
            metrics.updates,
            metrics.update_frequency(),
            metrics.packets_per_timestamp(),
            metrics.mean_compute_time().as_secs_f64() * 1e6
        );
    }

    println!(
        "\nFewer updates means fewer push notifications and less battery drain for the users;\n\
         the tile-based methods keep the recommendation valid for longer between refreshes."
    );
}
